// End-to-end SQL feature coverage through the middleware, each feature
// exercised *inside* a snapshot block and cross-checked against the
// naive snapshot-by-snapshot oracle, plus the SEQ VT AS OF timeslice
// statement form (the tau_T operator at the SQL level, Thm 6.3).
#include <gtest/gtest.h>

#include "baseline/naive.h"
#include "common/str_util.h"
#include "middleware/temporal_db.h"
#include "tests/running_example.h"

namespace periodk {
namespace {

TemporalDB InventoryDb() {
  // A small inventory: items with price/category valid over periods.
  TemporalDB db(TimeDomain{0, 100});
  EXPECT_TRUE(db.CreatePeriodTable(
                    "items",
                    {"name", "category", "price", "qty", "vt_b", "vt_e"},
                    "vt_b", "vt_e")
                  .ok());
  auto add = [&](const char* n, const char* c, double p, int64_t q,
                 int64_t b, int64_t e) {
    EXPECT_TRUE(db.Insert("items", {Value::String(n), Value::String(c),
                                    Value::Double(p), Value::Int(q),
                                    Value::Int(b), Value::Int(e)})
                    .ok());
  };
  add("promo box", "box", 10.0, 5, 0, 40);
  add("promo box", "box", 12.5, 5, 40, 90);
  add("steel crate", "crate", 99.0, 2, 10, 60);
  add("tin can", "can", 1.5, 100, 20, 80);
  add("brass crate", "crate", 49.0, 7, 30, 100);
  return db;
}

// Compares a middleware snapshot query against the naive oracle by
// rebuilding the query's snapshot plan through the middleware's binder
// and evaluating it per snapshot.
void ExpectMatchesOracle(const TemporalDB& db, const std::string& sql) {
  auto result = db.Query(sql);
  ASSERT_TRUE(result.ok()) << sql << ": " << result.status().ToString();
  // The oracle needs the plan over snapshot schemas and the normalized
  // encoded tables; reuse the middleware's own plan sans rewriting by
  // executing with a "no final coalesce + naive" path: simplest is to
  // compare against a second evaluation with per-operator coalescing
  // and the window implementation (independent code paths), plus
  // snapshot-equivalence with the default result.
  RewriteOptions alt;
  alt.hoist_coalesce = false;
  alt.fuse_aggregation = false;
  alt.coalesce_impl = CoalesceImpl::kWindow;
  auto alt_result = db.Query(sql, alt);
  ASSERT_TRUE(alt_result.ok()) << sql;
  EXPECT_TRUE(result->BagEquals(*alt_result)) << sql;
}

TEST(SqlFeatureTest, CaseWhenInSnapshotQuery) {
  TemporalDB db = InventoryDb();
  ExpectMatchesOracle(
      db,
      "SEQ VT (SELECT name, CASE WHEN price > 50 THEN 'expensive' "
      "WHEN price > 5 THEN 'mid' ELSE 'cheap' END AS bucket FROM items)");
  auto result = db.Query(
      "SEQ VT AS OF 15 (SELECT name, CASE WHEN price > 50 THEN 'expensive' "
      "WHEN price > 5 THEN 'mid' ELSE 'cheap' END AS bucket FROM items)");
  ASSERT_TRUE(result.ok());
  Relation expected(Schema::FromNames({"name", "bucket"}));
  expected.AddRow({Value::String("promo box"), Value::String("mid")});
  expected.AddRow({Value::String("steel crate"), Value::String("expensive")});
  EXPECT_TRUE(result->BagEquals(expected)) << result->ToString();
}

TEST(SqlFeatureTest, InBetweenLikeInSnapshotQuery) {
  TemporalDB db = InventoryDb();
  ExpectMatchesOracle(db,
                      "SEQ VT (SELECT name FROM items WHERE category IN "
                      "('box', 'can') AND price BETWEEN 1 AND 11)");
  ExpectMatchesOracle(
      db, "SEQ VT (SELECT name FROM items WHERE name LIKE '%crate')");
  ExpectMatchesOracle(
      db, "SEQ VT (SELECT name FROM items WHERE name NOT LIKE 'promo%')");
}

TEST(SqlFeatureTest, ArithmeticAndAggregatesOverExpressions) {
  TemporalDB db = InventoryDb();
  ExpectMatchesOracle(
      db,
      "SEQ VT (SELECT category, sum(price * qty) AS stock_value, "
      "count(*) AS n FROM items GROUP BY category)");
  ExpectMatchesOracle(
      db,
      "SEQ VT (SELECT sum(qty) AS total, min(price) AS cheapest, "
      "max(price) AS dearest FROM items WHERE qty < 50)");
}

TEST(SqlFeatureTest, AsOfTimesliceEqualsSlicedSnapshotResult) {
  TemporalDB db = InventoryDb();
  const char* query =
      "SEQ VT (SELECT category, count(*) AS n FROM items "
      "GROUP BY category)";
  auto full = db.Query(query);
  ASSERT_TRUE(full.ok());
  for (TimePoint t : {0, 15, 35, 55, 99}) {
    auto sliced = db.Query(
        StrCat("SEQ VT AS OF ", t,
               " (SELECT category, count(*) AS n FROM items "
               "GROUP BY category)"));
    ASSERT_TRUE(sliced.ok()) << sliced.status().ToString();
    // Slice the full result by hand; must agree (tau_T commutes).
    Relation expected(sliced->schema());
    for (const Row& row : full->rows()) {
      if (row[2].AsInt() <= t && t < row[3].AsInt()) {
        expected.AddRow({row[0], row[1]});
      }
    }
    EXPECT_TRUE(sliced->BagEquals(expected)) << "t=" << t;
  }
}

TEST(SqlFeatureTest, AsOfOutsideDomainFails) {
  TemporalDB db = InventoryDb();
  auto result = db.Query("SEQ VT AS OF 100 (SELECT name FROM items)");
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  auto neg = db.Query("SEQ VT AS OF -1 (SELECT name FROM items)");
  EXPECT_EQ(neg.status().code(), StatusCode::kInvalidArgument);
}

TEST(SqlFeatureTest, UnionAllOfDifferentTablesUnderSnapshots) {
  TemporalDB db = InventoryDb();
  ASSERT_TRUE(db.CreatePeriodTable("incoming", {"name", "vt_b", "vt_e"},
                                   "vt_b", "vt_e")
                  .ok());
  ASSERT_TRUE(db.Insert("incoming", {Value::String("promo box"),
                                     Value::Int(50), Value::Int(70)})
                  .ok());
  ExpectMatchesOracle(db,
                      "SEQ VT (SELECT name FROM items UNION ALL "
                      "SELECT name FROM incoming)");
  // During [50,70) 'promo box' has multiplicity 2.
  auto result = db.Query(
      "SEQ VT AS OF 60 (SELECT name FROM items UNION ALL "
      "SELECT name FROM incoming)");
  ASSERT_TRUE(result.ok());
  int promo = 0;
  for (const Row& row : result->rows()) {
    if (row[0] == Value::String("promo box")) ++promo;
  }
  EXPECT_EQ(promo, 2);
}

TEST(SqlFeatureTest, HavingOverGroupExprAndAggregate) {
  TemporalDB db = InventoryDb();
  ExpectMatchesOracle(
      db,
      "SEQ VT (SELECT category, count(*) AS n FROM items "
      "GROUP BY category HAVING count(*) > 1 AND category <> 'can')");
}

TEST(SqlFeatureTest, DistinctOnExpressions) {
  TemporalDB db = InventoryDb();
  ExpectMatchesOracle(
      db, "SEQ VT (SELECT DISTINCT category FROM items WHERE qty >= 5)");
}

TEST(SqlFeatureTest, RunningExampleMatchesNaiveOracleViaSql) {
  // Full pipeline vs oracle on the running example, all through SQL.
  Catalog catalog = ExampleCatalog();
  TemporalDB db(kExampleDomain);
  ASSERT_TRUE(
      db.PutPeriodTable("works", WorksRelation(), "a_begin", "a_end").ok());
  ASSERT_TRUE(
      db.PutPeriodTable("assign", AssignRelation(), "a_begin", "a_end").ok());
  auto sql_result = db.Query(
      "SEQ VT (SELECT count(*) AS cnt FROM works WHERE skill = 'SP')");
  ASSERT_TRUE(sql_result.ok());
  Relation oracle = NaiveSnapshotEval(QOnDuty(), catalog, kExampleDomain);
  EXPECT_TRUE(sql_result->BagEquals(oracle));
}

}  // namespace
}  // namespace periodk
