// Integration test: the Section 10 workload queries, cross-checked at
// tiny scale against the naive snapshot-by-snapshot oracle (the
// executable abstract model).  This closes the loop between the SQL
// front end, the rewriting, the engine, and the formal semantics on
// *realistic* query shapes (multi-way joins, nested aggregation
// subqueries, differences).
#include <gtest/gtest.h>

#include "baseline/naive.h"
#include "datagen/employees.h"
#include "datagen/workloads.h"
#include "sql/binder.h"
#include "sql/parser.h"

namespace periodk {
namespace {

class WorkloadOracleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    config_.num_employees = 25;
    config_.domain = TimeDomain{0, 400};
    db_ = std::make_unique<TemporalDB>(config_.domain);
    ASSERT_TRUE(LoadEmployees(db_.get(), config_).ok());
    for (const char* table : {"departments", "employees", "salaries",
                              "titles", "dept_emp", "dept_manager"}) {
      period_tables_[table] = sql::PeriodTableInfo{"vt_begin", "vt_end"};
    }
  }

  // Evaluates the snapshot query via the oracle: parse + bind to the
  // snapshot plan, then brute-force per-snapshot evaluation.
  Relation Oracle(const std::string& sql) {
    auto parsed = sql::Parse(sql);
    EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
    sql::Binder binder(&db_->catalog(), &period_tables_);
    auto bound = binder.Bind(*parsed);
    EXPECT_TRUE(bound.ok()) << bound.status().ToString();
    return NaiveSnapshotEval(bound->plan, db_->catalog(), config_.domain);
  }

  void CheckQuery(const std::string& name) {
    for (const WorkloadQuery& q : EmployeeWorkload()) {
      if (q.name != name) continue;
      auto ours = db_->Query(q.sql);
      ASSERT_TRUE(ours.ok()) << q.name << ": " << ours.status().ToString();
      Relation oracle = Oracle(q.sql);
      ASSERT_TRUE(ours->BagEquals(oracle))
          << q.name << "\nours: " << ours->size()
          << " rows\noracle: " << oracle.size() << " rows";
      return;
    }
    FAIL() << "unknown workload query " << name;
  }

  EmployeesConfig config_;
  std::unique_ptr<TemporalDB> db_;
  std::map<std::string, sql::PeriodTableInfo> period_tables_;
};

TEST_F(WorkloadOracleTest, Join1) { CheckQuery("join-1"); }
TEST_F(WorkloadOracleTest, Join2) { CheckQuery("join-2"); }
TEST_F(WorkloadOracleTest, Join3) { CheckQuery("join-3"); }
TEST_F(WorkloadOracleTest, Join4) { CheckQuery("join-4"); }
TEST_F(WorkloadOracleTest, Agg1) { CheckQuery("agg-1"); }
TEST_F(WorkloadOracleTest, Agg2) { CheckQuery("agg-2"); }
TEST_F(WorkloadOracleTest, Agg3) { CheckQuery("agg-3"); }
TEST_F(WorkloadOracleTest, AggJoin) { CheckQuery("agg-join"); }
TEST_F(WorkloadOracleTest, Diff1) { CheckQuery("diff-1"); }
TEST_F(WorkloadOracleTest, Diff2) { CheckQuery("diff-2"); }

}  // namespace
}  // namespace periodk
