// Shared randomized-query and randomized-database generators for the
// property tests.  All generated plans have arity 2 over small integer
// domains so every operator is applicable at any nesting point.
#ifndef PERIODK_TESTS_RANDOM_QUERY_H_
#define PERIODK_TESTS_RANDOM_QUERY_H_

#include "annotated/snapshot_k_relation.h"
#include "common/rng.h"
#include "engine/executor.h"
#include "ra/plan.h"

namespace periodk {

struct RandomQueryConfig {
  bool allow_aggregate = true;
  bool allow_difference = true;
  bool allow_distinct = true;
  // Fuzzing knobs (all off by default; a zero chance draws no random
  // numbers, so enabling none of them leaves the plan stream of
  // existing seeds bit-identical).
  double null_literal_chance = 0.0;  // NULL literals in scalars/predicates
  double union_dup_chance = 0.0;     // UNION ALL of one shared subplan
  double period_scan_chance = 0.0;   // scan leaves over period table "p"
  // Mid-sequence writes for the differential fuzzer: with this chance a
  // fuzz case carries per-table insert batches to apply *between* query
  // evaluations, so the oracle also validates post-write indexed reads
  // (the rows ride RandomAppendRows below).  Consulted only by drivers
  // that opt in; like every knob, zero draws no random numbers.
  double mid_insert_chance = 0.0;
};

class RandomQueryGenerator {
 public:
  RandomQueryGenerator(Rng* rng, RandomQueryConfig config = {})
      : rng_(rng), config_(config) {}

  PlanPtr Generate(int depth) {
    if (depth <= 0) return Scan();
    switch (rng_->Uniform(8)) {
      case 0:
        return Scan();
      case 1:
        return MakeSelect(Generate(depth - 1), RandomPredicate());
      case 2: {
        PlanPtr child = Generate(depth - 1);
        return MakeProject(child, {RandomScalar(), Col(RandomCol())},
                           {Column("p0"), Column("p1")});
      }
      case 3: {
        PlanPtr join = MakeJoin(Generate(depth - 1), Generate(depth - 1),
                                Eq(Col(0), Col(2)));
        return MakeProjectColumns(join, {1, 3});
      }
      case 4:
        if (config_.union_dup_chance > 0 &&
            rng_->Chance(config_.union_dup_chance)) {
          // Duplicate amplifier: both branches are the *same* subplan,
          // doubling every multiplicity (and exercising DAG sharing).
          PlanPtr sub = Generate(depth - 1);
          return MakeUnionAll(sub, sub);
        }
        return MakeUnionAll(Generate(depth - 1), Generate(depth - 1));
      case 5:
        if (config_.allow_difference) {
          return MakeExceptAll(Generate(depth - 1), Generate(depth - 1));
        }
        return MakeSelect(Generate(depth - 1), RandomPredicate());
      case 6:
        if (config_.allow_distinct) return MakeDistinct(Generate(depth - 1));
        return Generate(depth - 1);
      default:
        if (config_.allow_aggregate) return Aggregate(Generate(depth - 1));
        return MakeUnionAll(Generate(depth - 1), Scan());
    }
  }

 private:
  PlanPtr Scan() {
    if (config_.period_scan_chance > 0 &&
        rng_->Chance(config_.period_scan_chance)) {
      // Period table (AddRandomPeriodTable): stored with non-trailing
      // interval columns; the snapshot-level scan sees only the data.
      return MakeScan("p", Schema::FromNames({"a", "b"}));
    }
    return MakeScan(rng_->Chance(0.5) ? "r" : "s",
                    Schema::FromNames({"a", "b"}));
  }

  int RandomCol() { return static_cast<int>(rng_->Uniform(2)); }

  ExprPtr RandomScalar() {
    if (config_.null_literal_chance > 0 &&
        rng_->Chance(config_.null_literal_chance)) {
      return Lit(Value::Null());
    }
    switch (rng_->Uniform(3)) {
      case 0:
        return Col(RandomCol());
      case 1:
        return LitInt(rng_->Range(0, 3));
      default:
        return Add(Col(RandomCol()), LitInt(rng_->Range(0, 2)));
    }
  }

  ExprPtr RandomPredicate() {
    CompareOp ops[] = {CompareOp::kEq, CompareOp::kNe, CompareOp::kLt,
                       CompareOp::kGe};
    ExprPtr rhs = config_.null_literal_chance > 0 &&
                          rng_->Chance(config_.null_literal_chance)
                      ? Lit(Value::Null())  // 3VL: never satisfied
                      : LitInt(rng_->Range(0, 3));
    return Cmp(ops[rng_->Uniform(4)], Col(RandomCol()), std::move(rhs));
  }

  PlanPtr Aggregate(PlanPtr child) {
    AggFunc funcs[] = {AggFunc::kCountStar, AggFunc::kCount, AggFunc::kSum,
                       AggFunc::kAvg, AggFunc::kMin, AggFunc::kMax};
    AggFunc f = funcs[rng_->Uniform(6)];
    AggExpr agg{f, f == AggFunc::kCountStar ? nullptr : Col(RandomCol()),
                "agg"};
    if (rng_->Chance(0.5)) {
      return MakeAggregate(std::move(child), {Col(RandomCol(), "g")},
                           {Column("g")}, {std::move(agg)});
    }
    AggExpr agg2{AggFunc::kCountStar, nullptr, "cnt"};
    return MakeAggregate(std::move(child), {}, {},
                         {std::move(agg), std::move(agg2)});
  }

  Rng* rng_;
  RandomQueryConfig config_;
};

/// Random PERIODENC-encoded tables "r" and "s" for the engine path.
/// `null_chance` makes each data column independently NULL;
/// `empty_validity_chance` produces rows whose interval is empty
/// (begin >= end) -- annotation 0 everywhere, but still visible to raw
/// multiset operators, so join paths must agree on them.
inline Catalog RandomEncodedCatalog(Rng* rng, const TimeDomain& domain,
                                    int max_rows = 12,
                                    double null_chance = 0.0,
                                    double empty_validity_chance = 0.0) {
  Catalog catalog;
  for (const char* name : {"r", "s"}) {
    Relation rel(Schema::FromNames({"a", "b", "a_begin", "a_end"}));
    int n = static_cast<int>(rng->Uniform(max_rows));
    for (int i = 0; i < n; ++i) {
      TimePoint b = rng->Range(domain.tmin, domain.tmax - 2);
      TimePoint e = rng->Chance(empty_validity_chance)
                        ? rng->Range(domain.tmin, b)
                        : rng->Range(b + 1, domain.tmax - 1);
      auto data = [&] {
        return rng->Chance(null_chance) ? Value::Null()
                                        : Value::Int(rng->Range(0, 3));
      };
      rel.AddRow({data(), data(), Value::Int(b), Value::Int(e)});
    }
    catalog.Put(name, std::move(rel));
  }
  return catalog;
}

/// Adds a random *period table* "p" to the catalog: same row
/// distribution as RandomEncodedCatalog, but stored with its interval
/// columns in non-trailing positions ({a_begin, a, a_end, b}).  Returns
/// the PERIODENC view -- a projection reordering to {a, b, a_begin,
/// a_end} -- for SnapshotRewriter's encoded_tables map, so rewrites of
/// Scan("p") exercise the pushdown-through-projection paths.
inline PlanPtr AddRandomPeriodTable(Rng* rng, Catalog* catalog,
                                    const TimeDomain& domain,
                                    int max_rows = 12,
                                    double null_chance = 0.0,
                                    double empty_validity_chance = 0.0) {
  Schema stored = Schema::FromNames({"a_begin", "a", "a_end", "b"});
  Relation rel(stored);
  int n = static_cast<int>(rng->Uniform(max_rows));
  for (int i = 0; i < n; ++i) {
    TimePoint b = rng->Range(domain.tmin, domain.tmax - 2);
    TimePoint e = rng->Chance(empty_validity_chance)
                      ? rng->Range(domain.tmin, b)
                      : rng->Range(b + 1, domain.tmax - 1);
    auto data = [&] {
      return rng->Chance(null_chance) ? Value::Null()
                                      : Value::Int(rng->Range(0, 3));
    };
    rel.AddRow({Value::Int(b), data(), Value::Int(e), data()});
  }
  catalog->Put("p", std::move(rel));
  return MakeProjectColumns(MakeScan("p", stored), {1, 3, 0, 2});
}

/// Random rows shaped for the fuzzer's tables: the trailing-endpoint
/// layout of RandomEncodedCatalog's "r"/"s" ({a, b, a_begin, a_end}),
/// or AddRandomPeriodTable's stored "p" layout ({a_begin, a, a_end, b})
/// when `period_layout` is set.  Same value distribution as the table
/// generators, so mid-sequence appends (RandomQueryConfig::
/// mid_insert_chance) extend a table without skewing it.  Callers
/// invoke this only after the knob fired, keeping zero-knob seed
/// streams bit-identical.
inline std::vector<Row> RandomAppendRows(Rng* rng, const TimeDomain& domain,
                                         bool period_layout, int count,
                                         double null_chance = 0.0,
                                         double empty_validity_chance = 0.0) {
  std::vector<Row> rows;
  rows.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    TimePoint b = rng->Range(domain.tmin, domain.tmax - 2);
    TimePoint e = rng->Chance(empty_validity_chance)
                      ? rng->Range(domain.tmin, b)
                      : rng->Range(b + 1, domain.tmax - 1);
    auto data = [&] {
      return rng->Chance(null_chance) ? Value::Null()
                                      : Value::Int(rng->Range(0, 3));
    };
    if (period_layout) {
      rows.push_back({Value::Int(b), data(), Value::Int(e), data()});
    } else {
      rows.push_back({data(), data(), Value::Int(b), Value::Int(e)});
    }
  }
  return rows;
}

/// Random snapshot K-relation with `max_tuples` distinct tuples, each
/// holding a random annotation over a few random intervals.
template <Semiring K>
SnapshotKRelation<K> RandomSnapshotKRelation(const K& k,
                                             const TimeDomain& domain,
                                             Rng* rng, int max_tuples = 5) {
  SnapshotKRelation<K> out(k, domain);
  int n = static_cast<int>(rng->Uniform(max_tuples + 1));
  for (int i = 0; i < n; ++i) {
    Row tuple = {Value::Int(rng->Range(0, 3)), Value::Int(rng->Range(0, 3))};
    int runs = static_cast<int>(rng->Uniform(3)) + 1;
    for (int r = 0; r < runs; ++r) {
      TimePoint b = rng->Range(domain.tmin, domain.tmax - 2);
      TimePoint e = rng->Range(b + 1, domain.tmax - 1);
      typename K::Value v = k.RandomValue(*rng);
      for (TimePoint t = b; t < e; ++t) {
        out.MutableAt(t).Add(tuple, v);
      }
    }
  }
  return out;
}

}  // namespace periodk

#endif  // PERIODK_TESTS_RANDOM_QUERY_H_
