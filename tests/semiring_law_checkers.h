// Reusable property-test law checkers for semirings and m-semirings.
// Used both for the base semirings (B, N, Lin, Trop) and -- via the same
// generic code -- for the period semirings K^T, which is exactly the
// content of paper Theorems 6.2 and 7.1.
#ifndef PERIODK_TESTS_SEMIRING_LAW_CHECKERS_H_
#define PERIODK_TESTS_SEMIRING_LAW_CHECKERS_H_

#include <gtest/gtest.h>

#include "common/rng.h"
#include "semiring/semiring.h"

namespace periodk {

/// Checks the commutative-semiring laws on random elements drawn from
/// s.RandomValue.
template <Semiring S>
void CheckSemiringLaws(const S& s, Rng& rng, int iterations) {
  using V = typename S::Value;
  for (int i = 0; i < iterations; ++i) {
    V a = s.RandomValue(rng);
    V b = s.RandomValue(rng);
    V c = s.RandomValue(rng);
    // Addition: commutative monoid with identity 0.
    ASSERT_TRUE(s.Equal(s.Plus(a, b), s.Plus(b, a)))
        << s.Name() << ": + not commutative: a=" << s.ToString(a)
        << " b=" << s.ToString(b);
    ASSERT_TRUE(s.Equal(s.Plus(s.Plus(a, b), c), s.Plus(a, s.Plus(b, c))))
        << s.Name() << ": + not associative: a=" << s.ToString(a)
        << " b=" << s.ToString(b) << " c=" << s.ToString(c);
    ASSERT_TRUE(s.Equal(s.Plus(a, s.Zero()), a))
        << s.Name() << ": 0 not neutral for +: a=" << s.ToString(a);
    // Multiplication: commutative monoid with identity 1.
    ASSERT_TRUE(s.Equal(s.Times(a, b), s.Times(b, a)))
        << s.Name() << ": * not commutative: a=" << s.ToString(a)
        << " b=" << s.ToString(b);
    ASSERT_TRUE(s.Equal(s.Times(s.Times(a, b), c), s.Times(a, s.Times(b, c))))
        << s.Name() << ": * not associative: a=" << s.ToString(a)
        << " b=" << s.ToString(b) << " c=" << s.ToString(c);
    ASSERT_TRUE(s.Equal(s.Times(a, s.One()), a))
        << s.Name() << ": 1 not neutral for *: a=" << s.ToString(a);
    // Distributivity and annihilation.
    ASSERT_TRUE(s.Equal(s.Times(a, s.Plus(b, c)),
                        s.Plus(s.Times(a, b), s.Times(a, c))))
        << s.Name() << ": * does not distribute over +: a=" << s.ToString(a)
        << " b=" << s.ToString(b) << " c=" << s.ToString(c);
    ASSERT_TRUE(s.Equal(s.Times(a, s.Zero()), s.Zero()))
        << s.Name() << ": 0 not annihilating: a=" << s.ToString(a);
  }
}

/// Checks the m-semiring (monus) laws: the natural order is a partial
/// order with minimum 0, and a monus b is the least c with a <= b + c.
template <MSemiring S>
void CheckMonusLaws(const S& s, Rng& rng, int iterations) {
  using V = typename S::Value;
  for (int i = 0; i < iterations; ++i) {
    V a = s.RandomValue(rng);
    V b = s.RandomValue(rng);
    V c = s.RandomValue(rng);
    // Natural order sanity.
    ASSERT_TRUE(s.NaturalLeq(a, a)) << s.Name() << ": <= not reflexive";
    ASSERT_TRUE(s.NaturalLeq(s.Zero(), a))
        << s.Name() << ": 0 not least element: a=" << s.ToString(a);
    if (s.NaturalLeq(a, b) && s.NaturalLeq(b, a)) {
      ASSERT_TRUE(s.Equal(a, b))
          << s.Name() << ": <= not antisymmetric: a=" << s.ToString(a)
          << " b=" << s.ToString(b);
    }
    if (s.NaturalLeq(a, b) && s.NaturalLeq(b, c)) {
      ASSERT_TRUE(s.NaturalLeq(a, c)) << s.Name() << ": <= not transitive";
    }
    ASSERT_TRUE(s.NaturalLeq(a, s.Plus(a, b)))
        << s.Name() << ": a <= a + b violated";
    // Monus identities.
    ASSERT_TRUE(s.Equal(s.Monus(a, a), s.Zero()))
        << s.Name() << ": a - a != 0: a=" << s.ToString(a);
    ASSERT_TRUE(s.Equal(s.Monus(a, s.Zero()), a))
        << s.Name() << ": a - 0 != a: a=" << s.ToString(a);
    ASSERT_TRUE(s.Equal(s.Monus(s.Zero(), a), s.Zero()))
        << s.Name() << ": 0 - a != 0: a=" << s.ToString(a);
    // Defining property: a - b is the least c with a <= b + c.
    V d = s.Monus(a, b);
    ASSERT_TRUE(s.NaturalLeq(a, s.Plus(b, d)))
        << s.Name() << ": a <= b + (a - b) violated: a=" << s.ToString(a)
        << " b=" << s.ToString(b);
    if (s.NaturalLeq(a, s.Plus(b, c))) {
      ASSERT_TRUE(s.NaturalLeq(d, c))
          << s.Name() << ": a - b not minimal: a=" << s.ToString(a)
          << " b=" << s.ToString(b) << " c=" << s.ToString(c);
    }
  }
}

}  // namespace periodk

#endif  // PERIODK_TESTS_SEMIRING_LAW_CHECKERS_H_
