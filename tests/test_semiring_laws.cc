// Property tests: every semiring in the library satisfies the
// commutative-semiring laws, and every m-semiring satisfies the monus
// laws.  The same law-checkers are reused by test_period_semiring.cc for
// K^T (paper Thm 6.2 / 7.1); here they validate the base semirings.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "semiring/bool_semiring.h"
#include "semiring/lineage_semiring.h"
#include "semiring/nat_semiring.h"
#include "semiring/tropical_semiring.h"
#include "tests/semiring_law_checkers.h"

namespace periodk {
namespace {

template <typename S>
class SemiringLawsTest : public ::testing::Test {
 public:
  S MakeSemiring() { return S(); }
};

using AllSemirings = ::testing::Types<BoolSemiring, NatSemiring,
                                      LineageSemiring, TropicalSemiring>;
TYPED_TEST_SUITE(SemiringLawsTest, AllSemirings);

TYPED_TEST(SemiringLawsTest, SatisfiesSemiringLaws) {
  TypeParam s = this->MakeSemiring();
  Rng rng(0xabcdef12);
  CheckSemiringLaws(s, rng, /*iterations=*/500);
}

template <typename S>
class MonusLawsTest : public ::testing::Test {
 public:
  S MakeSemiring() { return S(); }
};

using MonusSemirings =
    ::testing::Types<BoolSemiring, NatSemiring, TropicalSemiring>;
TYPED_TEST_SUITE(MonusLawsTest, MonusSemirings);

TYPED_TEST(MonusLawsTest, SatisfiesMonusLaws) {
  TypeParam s = this->MakeSemiring();
  Rng rng(0x12345678);
  CheckMonusLaws(s, rng, /*iterations=*/500);
}

TEST(SemiringExamplesTest, NatMatchesPaperExample41) {
  // Example 4.1: (M1) has annotation 1*4 + 1*4 = 8 under N.
  NatSemiring n;
  EXPECT_EQ(n.Plus(n.Times(1, 4), n.Times(1, 4)), 8);
  // Under B (via homomorphism h: nonzero -> true) the tuple is present.
  BoolSemiring b;
  EXPECT_TRUE(b.Plus(b.Times(true, true), b.Times(true, true)));
}

TEST(SemiringExamplesTest, NatMonusIsTruncatingMinus) {
  NatSemiring n;
  EXPECT_EQ(n.Monus(5, 3), 2);
  EXPECT_EQ(n.Monus(3, 5), 0);
  EXPECT_EQ(n.Monus(3, 3), 0);
}

TEST(SemiringExamplesTest, BoolMonusIsSetDifference) {
  BoolSemiring b;
  EXPECT_TRUE(b.Monus(true, false));
  EXPECT_FALSE(b.Monus(true, true));
  EXPECT_FALSE(b.Monus(false, true));
}

TEST(SemiringExamplesTest, LineageCombinesContributingTuples) {
  LineageSemiring lin;
  auto a = LineageSemiring::Value(std::set<int>{1});
  auto b = LineageSemiring::Value(std::set<int>{2, 3});
  EXPECT_EQ(lin.ToString(lin.Times(a, b)), "{1,2,3}");
  EXPECT_EQ(lin.ToString(lin.Plus(lin.Zero(), a)), "{1}");
  EXPECT_EQ(lin.ToString(lin.Times(lin.Zero(), a)), "_|_");
}

TEST(SemiringExamplesTest, TropicalTracksMinimumCost) {
  TropicalSemiring t;
  EXPECT_EQ(t.Plus(3, 7), 3);
  EXPECT_EQ(t.Times(3, 7), 10);
  EXPECT_EQ(t.Times(t.Zero(), 7), t.Zero());
}

}  // namespace
}  // namespace periodk
