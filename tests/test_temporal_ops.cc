// Tests for the physical temporal operators: multiset coalescing (both
// implementations, Def 8.2), the split operator (Def 8.3), the fused
// split+aggregate (Sec. 9) and the timeslice, including randomized
// cross-checks between the native and window implementations.
#include "engine/temporal_ops.h"

#include <gtest/gtest.h>

#include <limits>

#include "common/rng.h"
#include "rewrite/period_enc.h"
#include "tests/running_example.h"

namespace periodk {
namespace {

Relation SalariesExample() {
  // Paper Figure 3: S(sal, period).
  return EncodedRelation(
      {"sal"}, {{{Value::Int(50)}, Interval(1, 13)},
                {{Value::Int(30)}, Interval(3, 13)},
                {{Value::Int(30)}, Interval(3, 10)},
                {{Value::Int(40)}, Interval(11, 13)}});
}

Relation CoalescedSalaries() {
  // N-coalesced: 30k twice in [3,10), once in [10,13); others unchanged.
  return EncodedRelation(
      {"sal"}, {{{Value::Int(50)}, Interval(1, 13)},
                {{Value::Int(30)}, Interval(3, 10)},
                {{Value::Int(30)}, Interval(3, 10)},
                {{Value::Int(30)}, Interval(10, 13)},
                {{Value::Int(40)}, Interval(11, 13)}});
}

TEST(CoalesceOpTest, PaperFigure3Native) {
  Relation out = CoalesceNative(SalariesExample());
  EXPECT_TRUE(out.BagEquals(CoalescedSalaries()));
}

TEST(CoalesceOpTest, PaperFigure3Window) {
  Relation out = CoalesceWindow(SalariesExample());
  EXPECT_TRUE(out.BagEquals(CoalescedSalaries()));
}

TEST(CoalesceOpTest, IdempotentAndCanonical) {
  Relation once = CoalesceNative(SalariesExample());
  Relation twice = CoalesceNative(once);
  EXPECT_TRUE(once.BagEquals(twice));
}

TEST(CoalesceOpTest, MergesAdjacentEqualMultiplicity) {
  Relation in = EncodedRelation({"v"}, {{{Value::Int(1)}, Interval(0, 5)},
                                        {{Value::Int(1)}, Interval(5, 9)}});
  Relation expect =
      EncodedRelation({"v"}, {{{Value::Int(1)}, Interval(0, 9)}});
  EXPECT_TRUE(CoalesceNative(in).BagEquals(expect));
  EXPECT_TRUE(CoalesceWindow(in).BagEquals(expect));
}

TEST(CoalesceOpTest, EmptyAndDegenerateIntervals) {
  Relation empty(Schema::FromNames({"v", "a_begin", "a_end"}));
  EXPECT_EQ(CoalesceNative(empty).size(), 0u);
  EXPECT_EQ(CoalesceWindow(empty).size(), 0u);
  // Degenerate (b >= e) rows encode nothing.
  Relation degenerate = EncodedRelation({"v"}, {});
  degenerate.AddRow({Value::Int(1), Value::Int(5), Value::Int(5)});
  EXPECT_EQ(CoalesceNative(degenerate).size(), 0u);
}

TEST(CoalesceOpTest, NullValuesFormTheirOwnGroup) {
  Relation in(Schema::FromNames({"v", "a_begin", "a_end"}));
  in.AddRow({Value::Null(), Value::Int(0), Value::Int(5)});
  in.AddRow({Value::Null(), Value::Int(3), Value::Int(8)});
  Relation out = CoalesceNative(in);
  // {[0,3)->1, [3,5)->2, [5,8)->1} for the NULL tuple.
  EXPECT_EQ(out.size(), 4u);
}

TEST(CoalesceOpTest, RandomizedNativeEqualsWindowEqualsLogicalModel) {
  Rng rng(0xc0a1e5ce);
  TimeDomain dom{0, 30};
  for (int iter = 0; iter < 60; ++iter) {
    Relation in(Schema::FromNames({"a", "b", "a_begin", "a_end"}));
    int n = static_cast<int>(rng.Uniform(40));
    for (int i = 0; i < n; ++i) {
      TimePoint b = rng.Range(0, 28);
      TimePoint e = rng.Range(b + 1, 29);
      in.AddRow({Value::Int(rng.Range(0, 2)), Value::Int(rng.Range(0, 1)),
                 Value::Int(b), Value::Int(e)});
    }
    Relation native = CoalesceNative(in);
    Relation window = CoalesceWindow(in);
    ASSERT_TRUE(native.BagEquals(window))
        << "native:\n" << native.ToString() << "window:\n"
        << window.ToString();
    // Against the logical model: coalescing the engine encoding must
    // equal the PERIODENC image of the decoded (coalesced) N^T relation.
    Relation logical = PeriodEnc(PeriodDec(in, dom), in.schema().Prefix(2));
    ASSERT_TRUE(native.BagEquals(logical));
    // Snapshot equivalence with the input is preserved.
    ASSERT_TRUE(SnapshotEquivalentEncodings(in, native, dom));
  }
}

TEST(SplitOpTest, FragmentsAtGroupMateEndpoints) {
  Relation left = EncodedRelation({"g"}, {{{Value::Int(1)}, Interval(0, 10)}});
  Relation right = EncodedRelation({"g"}, {{{Value::Int(1)}, Interval(3, 6)},
                                           {{Value::Int(2)}, Interval(4, 5)}});
  Relation out = SplitRelation(left, right, {0});
  // Group 1 endpoints: 0,10 (left) + 3,6 (right) -> [0,3),[3,6),[6,10).
  // Group-2 endpoints (4,5) must NOT split group 1.
  Relation expect = EncodedRelation({"g"},
                                    {{{Value::Int(1)}, Interval(0, 3)},
                                     {{Value::Int(1)}, Interval(3, 6)},
                                     {{Value::Int(1)}, Interval(6, 10)}});
  EXPECT_TRUE(out.BagEquals(expect));
}

TEST(SplitOpTest, EmptyGroupListAlignsEverything) {
  Relation left = EncodedRelation({"g"}, {{{Value::Int(1)}, Interval(0, 10)}});
  Relation right = EncodedRelation({"g"}, {{{Value::Int(2)}, Interval(4, 5)}});
  Relation out = SplitRelation(left, right, {});
  EXPECT_EQ(out.size(), 3u);  // [0,4), [4,5), [5,10)
}

TEST(SplitOpTest, PreservesSnapshots) {
  Rng rng(0x5011701);
  TimeDomain dom{0, 20};
  for (int iter = 0; iter < 40; ++iter) {
    Relation in(Schema::FromNames({"g", "a_begin", "a_end"}));
    int n = static_cast<int>(rng.Uniform(20)) + 1;
    for (int i = 0; i < n; ++i) {
      TimePoint b = rng.Range(0, 18);
      TimePoint e = rng.Range(b + 1, 19);
      in.AddRow({Value::Int(rng.Range(0, 2)), Value::Int(b), Value::Int(e)});
    }
    Relation split = SplitRelation(in, in, {0});
    ASSERT_TRUE(SnapshotEquivalentEncodings(in, split, dom));
    // Fragments of the same group are equal or disjoint.
    for (const Row& a : split.rows()) {
      for (const Row& b : split.rows()) {
        if (a[0] != b[0]) continue;
        Interval ia(a[1].AsInt(), a[2].AsInt());
        Interval ib(b[1].AsInt(), b[2].AsInt());
        ASSERT_TRUE(ia == ib || !ia.Overlaps(ib))
            << ia.ToString() << " vs " << ib.ToString();
      }
    }
  }
}

TEST(SplitAggregateTest, GlobalCountWithGaps) {
  // The Q_onduty aggregation from the running example, fused.
  Catalog cat = ExampleCatalog();
  Relation sp(Schema::FromNames({"one", "a_begin", "a_end"}));
  for (const Row& row : cat.Get("works").rows()) {
    if (row[1] == Value::String("SP")) {
      sp.AddRow({Value::Int(1), row[2], row[3]});
    }
  }
  Relation out = SplitAggregateRelation(
      sp, {}, {AggExpr{AggFunc::kCountStar, nullptr, "cnt"}},
      /*gap_rows=*/true, kExampleDomain);
  Relation expect = EncodedRelation({"cnt"},
                                    {{{Value::Int(0)}, Interval(0, 3)},
                                     {{Value::Int(1)}, Interval(3, 8)},
                                     {{Value::Int(2)}, Interval(8, 10)},
                                     {{Value::Int(1)}, Interval(10, 16)},
                                     {{Value::Int(0)}, Interval(16, 18)},
                                     {{Value::Int(1)}, Interval(18, 20)},
                                     {{Value::Int(0)}, Interval(20, 24)}});
  EXPECT_TRUE(CoalesceNative(out).BagEquals(expect))
      << CoalesceNative(out).ToString();
}

TEST(SplitAggregateTest, EmptyInputStillCoversDomainWithGaps) {
  Relation in(Schema::FromNames({"v", "a_begin", "a_end"}));
  Relation out = SplitAggregateRelation(
      in, {}, {AggExpr{AggFunc::kCountStar, nullptr, "cnt"},
               AggExpr{AggFunc::kSum, Col(0), "s"}},
      /*gap_rows=*/true, TimeDomain{0, 10});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out.rows()[0][0], Value::Int(0));
  EXPECT_TRUE(out.rows()[0][1].is_null());
  EXPECT_EQ(out.rows()[0][2], Value::Int(0));
  EXPECT_EQ(out.rows()[0][3], Value::Int(10));
}

TEST(SplitAggregateTest, GapRowsClampedToDomain) {
  // Input intervals exceeding [tmin, tmax) must not produce fragments
  // outside the declared domain (regression: the gap sweep used to emit
  // them verbatim).
  TimeDomain domain{0, 24};
  std::vector<AggExpr> aggs = {AggExpr{AggFunc::kCountStar, nullptr, "cnt"}};
  auto run = [&](std::vector<std::pair<TimePoint, TimePoint>> intervals) {
    Relation in(Schema::FromNames({"v", "a_begin", "a_end"}));
    for (auto [b, e] : intervals) {
      in.AddRow({Value::Int(1), Value::Int(b), Value::Int(e)});
    }
    return SplitAggregateRelation(in, {}, aggs, /*gap_rows=*/true, domain);
  };
  // Straddles the lower bound.
  Relation below = run({{-5, 10}});
  Relation expect_below =
      EncodedRelation({"cnt"}, {{{Value::Int(1)}, Interval(0, 10)},
                                {{Value::Int(0)}, Interval(10, 24)}});
  EXPECT_TRUE(below.BagEquals(expect_below)) << below.ToString();
  // Straddles the upper bound.
  Relation above = run({{20, 30}});
  Relation expect_above =
      EncodedRelation({"cnt"}, {{{Value::Int(0)}, Interval(0, 20)},
                                {{Value::Int(1)}, Interval(20, 24)}});
  EXPECT_TRUE(above.BagEquals(expect_above)) << above.ToString();
  // Straddles both bounds at once.
  Relation both = run({{-5, 30}});
  Relation expect_both =
      EncodedRelation({"cnt"}, {{{Value::Int(1)}, Interval(0, 24)}});
  EXPECT_TRUE(both.BagEquals(expect_both)) << both.ToString();
  // Entirely outside the domain: only the full-domain gap row remains.
  Relation outside = run({{30, 40}, {-9, -2}});
  Relation expect_outside =
      EncodedRelation({"cnt"}, {{{Value::Int(0)}, Interval(0, 24)}});
  EXPECT_TRUE(outside.BagEquals(expect_outside)) << outside.ToString();
}

TEST(SplitAggregateTest, GroupedGapRowsClampedToDomain) {
  TimeDomain domain{0, 24};
  Relation in(Schema::FromNames({"g", "a_begin", "a_end"}));
  in.AddRow({Value::Int(1), Value::Int(-5), Value::Int(30)});
  in.AddRow({Value::Int(2), Value::Int(5), Value::Int(30)});
  Relation out = SplitAggregateRelation(
      in, {0}, {AggExpr{AggFunc::kCountStar, nullptr, "cnt"}},
      /*gap_rows=*/true, domain);
  Relation expect(out.schema());
  expect.AddRow({Value::Int(1), Value::Int(1), Value::Int(0), Value::Int(24)});
  expect.AddRow({Value::Int(2), Value::Int(0), Value::Int(0), Value::Int(5)});
  expect.AddRow({Value::Int(2), Value::Int(1), Value::Int(5), Value::Int(24)});
  EXPECT_TRUE(out.BagEquals(expect)) << out.ToString();
}

TEST(SplitAggregateTest, GroupedMinMaxSweep) {
  Relation in(Schema::FromNames({"g", "v", "a_begin", "a_end"}));
  auto add = [&](int64_t g, int64_t v, int64_t b, int64_t e) {
    in.AddRow({Value::Int(g), Value::Int(v), Value::Int(b), Value::Int(e)});
  };
  add(1, 10, 0, 10);
  add(1, 30, 2, 6);
  add(1, 20, 4, 8);
  Relation out = SplitAggregateRelation(
      in, {0},
      {AggExpr{AggFunc::kMin, Col(1), "lo"},
       AggExpr{AggFunc::kMax, Col(1), "hi"},
       AggExpr{AggFunc::kAvg, Col(1), "av"}},
      /*gap_rows=*/false, TimeDomain{0, 12});
  // Segments: [0,2): {10}; [2,4): {10,30}; [4,6): {10,30,20};
  //           [6,8): {10,20}; [8,10): {10}.
  Relation expect(out.schema());
  auto row = [&](int64_t b, int64_t e, int64_t lo, int64_t hi, double av) {
    expect.AddRow({Value::Int(1), Value::Int(lo), Value::Int(hi),
                   Value::Double(av), Value::Int(b), Value::Int(e)});
  };
  row(0, 2, 10, 10, 10.0);
  row(2, 4, 10, 30, 20.0);
  row(4, 6, 10, 30, 20.0);
  row(6, 8, 10, 20, 15.0);
  row(8, 10, 10, 10, 10.0);
  EXPECT_TRUE(out.BagEquals(expect)) << out.ToString();
}

TEST(SplitAggregateTest, PreAggregationOnOffAgree) {
  Rng rng(0xa66a66);
  for (int iter = 0; iter < 40; ++iter) {
    Relation in(Schema::FromNames({"g", "v", "a_begin", "a_end"}));
    int n = static_cast<int>(rng.Uniform(30));
    for (int i = 0; i < n; ++i) {
      TimePoint b = rng.Range(0, 14);
      TimePoint e = rng.Range(b + 1, 15);
      in.AddRow({Value::Int(rng.Range(0, 2)), Value::Int(rng.Range(0, 50)),
                 Value::Int(b), Value::Int(e)});
    }
    std::vector<AggExpr> aggs = {
        AggExpr{AggFunc::kCountStar, nullptr, "c"},
        AggExpr{AggFunc::kSum, Col(1), "s"},
        AggExpr{AggFunc::kMin, Col(1), "lo"},
        AggExpr{AggFunc::kMax, Col(1), "hi"}};
    Relation with = SplitAggregateRelation(in, {0}, aggs, false,
                                           TimeDomain{0, 16}, true);
    Relation without = SplitAggregateRelation(in, {0}, aggs, false,
                                              TimeDomain{0, 16}, false);
    ASSERT_TRUE(with.BagEquals(without))
        << "with:\n" << with.ToString() << "without:\n" << without.ToString();
  }
}

TEST(TimesliceTest, ExtractsSnapshot) {
  Relation works = WorksRelation();
  Relation at8 = TimesliceEncoded(works, 8);
  Relation expect(Schema::FromNames({"name", "skill"}));
  expect.AddRow({Value::String("Ann"), Value::String("SP")});
  expect.AddRow({Value::String("Joe"), Value::String("NS")});
  expect.AddRow({Value::String("Sam"), Value::String("SP")});
  EXPECT_TRUE(at8.BagEquals(expect));
  EXPECT_EQ(TimesliceEncoded(works, 0).size(), 0u);
  EXPECT_EQ(TimesliceEncoded(works, 23).size(), 0u);
  // Half-open semantics: end point excluded, begin included.
  EXPECT_EQ(TimesliceEncoded(works, 3).size(), 1u);
  EXPECT_EQ(TimesliceEncoded(works, 10).size(), 2u);
}

// --- Endpoint arithmetic at the int64 extremes.  A TimeDomain touching
// INT64_MIN / INT64_MAX must flow through timeslice, split and the
// gap-row synthesis without overflow (the sanitizer CI jobs turn any
// regression here into a hard failure). ------------------------------------

constexpr TimePoint kTimeMin = std::numeric_limits<int64_t>::min();
constexpr TimePoint kTimeMax = std::numeric_limits<int64_t>::max();

TEST(ExtremeDomainTest, TimesliceAtBothExtremes) {
  Relation rel(Schema::FromNames({"v", "b", "e"}));
  rel.AddRow({Value::Int(1), Value::Int(kTimeMin), Value::Int(kTimeMax)});
  rel.AddRow({Value::Int(2), Value::Int(kTimeMin), Value::Int(kTimeMin + 1)});
  rel.AddRow({Value::Int(3), Value::Int(kTimeMax - 1), Value::Int(kTimeMax)});
  EXPECT_EQ(TimesliceEncoded(rel, kTimeMin).size(), 2u);
  EXPECT_EQ(TimesliceEncoded(rel, kTimeMax - 1).size(), 2u);
  EXPECT_EQ(TimesliceEncoded(rel, 0).size(), 1u);
  // tmax itself is exclusive in every interval, so nothing is valid.
  EXPECT_EQ(TimesliceEncoded(rel, kTimeMax).size(), 0u);
}

TEST(ExtremeDomainTest, SplitAtBothExtremes) {
  Relation left(Schema::FromNames({"k", "b", "e"}));
  left.AddRow({Value::Int(1), Value::Int(kTimeMin), Value::Int(kTimeMax)});
  Relation right(Schema::FromNames({"k", "b", "e"}));
  right.AddRow({Value::Int(1), Value::Int(-5), Value::Int(7)});
  Relation out = SplitRelation(left, right, {0});
  // The full-domain interval splits at -5 and 7 into three fragments.
  Relation expect(left.schema());
  expect.AddRow({Value::Int(1), Value::Int(kTimeMin), Value::Int(-5)});
  expect.AddRow({Value::Int(1), Value::Int(-5), Value::Int(7)});
  expect.AddRow({Value::Int(1), Value::Int(7), Value::Int(kTimeMax)});
  EXPECT_TRUE(out.BagEquals(expect)) << out.ToString();
}

TEST(ExtremeDomainTest, GapRowSynthesisOverFullInt64Domain) {
  Relation rel(Schema::FromNames({"v", "b", "e"}));
  rel.AddRow({Value::Int(5), Value::Int(-3), Value::Int(4)});
  std::vector<AggExpr> aggs{AggExpr{AggFunc::kCountStar, nullptr, "cnt"}};
  TimeDomain full{kTimeMin, kTimeMax};
  Relation out = SplitAggregateRelation(rel, {}, aggs, /*gap_rows=*/true,
                                        full);
  Relation expect(Schema::FromNames({"cnt", "a_begin", "a_end"}));
  expect.AddRow({Value::Int(0), Value::Int(kTimeMin), Value::Int(-3)});
  expect.AddRow({Value::Int(1), Value::Int(-3), Value::Int(4)});
  expect.AddRow({Value::Int(0), Value::Int(4), Value::Int(kTimeMax)});
  EXPECT_TRUE(out.BagEquals(expect)) << out.ToString();
  // Empty input over the full domain: one all-gap row.
  Relation empty(Schema::FromNames({"v", "b", "e"}));
  Relation gap = SplitAggregateRelation(empty, {}, aggs, true, full);
  ASSERT_EQ(gap.size(), 1u);
  EXPECT_EQ(gap.rows()[0][1].AsInt(), kTimeMin);
  EXPECT_EQ(gap.rows()[0][2].AsInt(), kTimeMax);
}

TEST(ExtremeDomainTest, RunningSumWidensInsteadOfOverflowing) {
  // Two overlapping rows whose summed attribute is INT64_MAX-scale: the
  // running sum in the overlap fragment cannot fit int64 and must widen
  // to a double instead of wrapping (previously UB).
  Relation rel(Schema::FromNames({"v", "b", "e"}));
  rel.AddRow({Value::Int(kTimeMax - 1), Value::Int(0), Value::Int(10)});
  rel.AddRow({Value::Int(kTimeMax - 2), Value::Int(5), Value::Int(15)});
  std::vector<AggExpr> aggs{AggExpr{AggFunc::kSum, Col(0), "s"}};
  TimeDomain domain{0, 20};
  Relation out = SplitAggregateRelation(rel, {}, aggs, /*gap_rows=*/false,
                                        domain);
  ASSERT_EQ(out.size(), 3u);
  bool saw_overlap = false;
  for (const Row& row : out.rows()) {
    TimePoint b = row[1].AsInt();
    if (b == 5) {
      // Overlap fragment [5, 10): the sum of both values, as a double.
      ASSERT_EQ(row[0].type(), ValueType::kDouble);
      EXPECT_NEAR(row[0].AsDouble(), 2.0 * 9.223372036854775e18, 1e7);
      saw_overlap = true;
    } else {
      // Single-value fragments stay exact integers.
      ASSERT_EQ(row[0].type(), ValueType::kInt);
    }
  }
  EXPECT_TRUE(saw_overlap) << out.ToString();
}

TEST(ExtremeDomainTest, RunningSumStaysExactAfterTransientOverflow) {
  // Three rows: the middle fragment transiently overflows int64, but
  // once the huge values close again the remaining fragment must come
  // back as the exact integer (the 128-bit running sum never loses it).
  Relation rel(Schema::FromNames({"v", "b", "e"}));
  rel.AddRow({Value::Int(kTimeMax - 1), Value::Int(0), Value::Int(10)});
  rel.AddRow({Value::Int(kTimeMax - 2), Value::Int(0), Value::Int(10)});
  rel.AddRow({Value::Int(42), Value::Int(10), Value::Int(20)});
  std::vector<AggExpr> aggs{AggExpr{AggFunc::kSum, Col(0), "s"}};
  TimeDomain domain{0, 30};
  Relation out = SplitAggregateRelation(rel, {}, aggs, /*gap_rows=*/false,
                                        domain);
  ASSERT_EQ(out.size(), 2u);
  for (const Row& row : out.rows()) {
    if (row[1].AsInt() == 10) {
      ASSERT_EQ(row[0].type(), ValueType::kInt) << out.ToString();
      EXPECT_EQ(row[0].AsInt(), 42);
    }
  }
}

TEST(ExtremeDomainTest, PlainAggregateSumWidensOnOverflow) {
  AggState state;
  state.Accumulate(Value::Int(kTimeMax - 1));
  state.Accumulate(Value::Int(kTimeMax - 2));
  Value sum = state.Finalize(AggFunc::kSum, 2);
  ASSERT_EQ(sum.type(), ValueType::kDouble);
  EXPECT_NEAR(sum.AsDouble(), 2.0 * 9.223372036854775e18, 1e7);
  // Merge-side overflow widens too (the parallel aggregation path).
  AggState a;
  a.Accumulate(Value::Int(kTimeMax - 1));
  AggState b;
  b.Accumulate(Value::Int(kTimeMax - 2));
  a.Merge(b);
  EXPECT_EQ(a.Finalize(AggFunc::kSum, 2).type(), ValueType::kDouble);
}

TEST(ExtremeDomainTest, CoalesceBothImplsAtBothExtremes) {
  Relation rel(Schema::FromNames({"k", "b", "e"}));
  rel.AddRow({Value::Int(1), Value::Int(kTimeMin), Value::Int(0)});
  rel.AddRow({Value::Int(1), Value::Int(0), Value::Int(kTimeMax)});
  rel.AddRow({Value::Int(1), Value::Int(kTimeMax), Value::Int(kTimeMax)});
  Relation native = CoalesceNative(rel);
  Relation window = CoalesceWindow(rel);
  Relation expect(rel.schema());
  expect.AddRow({Value::Int(1), Value::Int(kTimeMin), Value::Int(kTimeMax)});
  EXPECT_TRUE(native.BagEquals(expect)) << native.ToString();
  EXPECT_TRUE(window.BagEquals(expect)) << window.ToString();
}

// --- Native vs window coalescing on degenerate inputs: both must drop
// empty intervals (begin >= end) identically.  Randomized equivalence
// over inputs dense in empty, touching and duplicate intervals. ------------

TEST(CoalesceEquivalenceTest, DegenerateRowsWithBeginEqualEnd) {
  Relation rel(Schema::FromNames({"k", "b", "e"}));
  rel.AddRow({Value::Int(1), Value::Int(2), Value::Int(2)});  // empty
  rel.AddRow({Value::Int(1), Value::Int(1), Value::Int(2)});
  rel.AddRow({Value::Int(1), Value::Int(2), Value::Int(3)});  // touching
  rel.AddRow({Value::Int(1), Value::Int(5), Value::Int(4)});  // reversed
  rel.AddRow({Value::Int(2), Value::Int(7), Value::Int(7)});  // group of empties
  Relation native = CoalesceNative(rel);
  Relation window = CoalesceWindow(rel);
  Relation expect(rel.schema());
  expect.AddRow({Value::Int(1), Value::Int(1), Value::Int(3)});
  EXPECT_TRUE(native.BagEquals(expect)) << native.ToString();
  EXPECT_TRUE(window.BagEquals(expect)) << window.ToString();
}

TEST(CoalesceEquivalenceTest, RandomizedWithEmptyAndTouchingIntervals) {
  Rng rng(20260731);
  for (int iter = 0; iter < 400; ++iter) {
    Relation rel(Schema::FromNames({"k", "b", "e"}));
    int n = static_cast<int>(rng.Uniform(8)) + 1;
    for (int i = 0; i < n; ++i) {
      // Endpoints from a tiny pool so empty (b == e), reversed, touching
      // and duplicate intervals are all frequent.
      TimePoint b = rng.Range(0, 6);
      TimePoint e = rng.Chance(0.3) ? b : rng.Range(0, 6);
      rel.AddRow({Value::Int(rng.Range(0, 2)), Value::Int(b), Value::Int(e)});
    }
    Relation native = CoalesceNative(rel);
    Relation window = CoalesceWindow(rel);
    ASSERT_TRUE(native.BagEquals(window))
        << "iter " << iter << "\ninput:\n" << rel.ToString()
        << "native:\n" << native.ToString()
        << "window:\n" << window.ToString();
  }
}

}  // namespace
}  // namespace periodk
