// Tests for the period semiring K^T: Theorem 6.2 (K^T is a semiring),
// Theorem 7.1 (K^T inherits the monus), Lemma 6.1 (coalesce pushes into
// the pointwise operations), Theorems 6.3/7.2 (timeslice is an
// (m-)semiring homomorphism), and the paper's worked examples 6.1 and
// the Section 7.1 bag-difference computation.
#include "temporal/period_semiring.h"

#include <gtest/gtest.h>

#include "semiring/bool_semiring.h"
#include "semiring/lineage_semiring.h"
#include "semiring/nat_semiring.h"
#include "semiring/tropical_semiring.h"
#include "tests/semiring_law_checkers.h"

namespace periodk {
namespace {

constexpr TimeDomain kDay{0, 24};

using NT = PeriodSemiring<NatSemiring>;
using BT = PeriodSemiring<BoolSemiring>;

TEST(PeriodSemiringTest, ZeroAndOne) {
  NT nt(NatSemiring(), kDay);
  EXPECT_TRUE(nt.Zero().empty());
  EXPECT_EQ(nt.ToString(nt.One()), "{[0, 24) -> 1}");
  // 1 is already coalesced, and 0 * x = 0.
  auto x = NT::Value(Interval(3, 10), 2);
  EXPECT_TRUE(nt.Equal(nt.Times(nt.Zero(), x), nt.Zero()));
  EXPECT_TRUE(nt.Equal(nt.Times(nt.One(), x), x));
}

TEST(PeriodSemiringTest, PaperExample61Addition) {
  // Example 6.1: T1 + T2 for (Ann,SP) and (Sam,SP) annotations.
  NT nt(NatSemiring(), kDay);
  NT::Value t1;
  t1.Add(Interval(3, 10), 1);
  t1.Add(Interval(18, 20), 1);
  NT::Value t2(Interval(8, 16), 1);
  NT::Value sum = nt.Plus(t1, t2);
  EXPECT_EQ(nt.ToString(sum),
            "{[3, 8) -> 1, [8, 10) -> 2, [10, 16) -> 1, [18, 20) -> 1}");
}

TEST(PeriodSemiringTest, MultiplicationIntersectsIntervals) {
  NT nt(NatSemiring(), kDay);
  NT::Value a(Interval(3, 12), 2);
  NT::Value b(Interval(6, 14), 3);
  EXPECT_EQ(nt.ToString(nt.Times(a, b)), "{[6, 12) -> 6}");
  // Disjoint intervals multiply to zero.
  NT::Value c(Interval(20, 22), 5);
  EXPECT_TRUE(nt.Equal(nt.Times(a, c), nt.Zero()));
}

TEST(PeriodSemiringTest, PaperSection71BagDifference) {
  // The worked monus computation from Section 7.1 (query Q_skillreq):
  //   ({[03,12)->1} + {[06,14)->1}) - ({[03,10)->1} + {[08,16)->1}
  //                                    + {[18,20)->1})
  // = {[06,08)->1, [10,12)->1}.
  NT nt(NatSemiring(), kDay);
  NT::Value assign_sp =
      nt.Plus(NT::Value(Interval(3, 12), 1), NT::Value(Interval(6, 14), 1));
  EXPECT_EQ(nt.ToString(assign_sp),
            "{[3, 6) -> 1, [6, 12) -> 2, [12, 14) -> 1}");
  NT::Value works_sp = nt.Plus(
      nt.Plus(NT::Value(Interval(3, 10), 1), NT::Value(Interval(8, 16), 1)),
      NT::Value(Interval(18, 20), 1));
  EXPECT_EQ(nt.ToString(works_sp),
            "{[3, 8) -> 1, [8, 10) -> 2, [10, 16) -> 1, [18, 20) -> 1}");
  NT::Value diff = nt.Monus(assign_sp, works_sp);
  EXPECT_EQ(nt.ToString(diff), "{[6, 8) -> 1, [10, 12) -> 1}");
}

TEST(PeriodSemiringTest, BoolMonusIsTemporalSetDifference) {
  BT bt(BoolSemiring(), kDay);
  BT::Value a(Interval(3, 12), true);
  BT::Value b(Interval(6, 8), true);
  EXPECT_EQ(bt.ToString(bt.Monus(a, b)),
            "{[3, 6) -> true, [8, 12) -> true}");
}

// --- Theorem 6.2 / 7.1: K^T is an (m-)semiring, via the generic law
// checkers over random coalesced elements. -------------------------------

template <typename S>
class PeriodSemiringLawsTest : public ::testing::Test {};

using AllBase = ::testing::Types<BoolSemiring, NatSemiring, LineageSemiring,
                                 TropicalSemiring>;
TYPED_TEST_SUITE(PeriodSemiringLawsTest, AllBase);

TYPED_TEST(PeriodSemiringLawsTest, Theorem62SemiringLaws) {
  PeriodSemiring<TypeParam> kt(TypeParam(), TimeDomain{0, 16});
  Rng rng(0x7e570001);
  CheckSemiringLaws(kt, rng, /*iterations=*/120);
}

template <typename S>
class PeriodMonusLawsTest : public ::testing::Test {};

using MonusBase = ::testing::Types<BoolSemiring, NatSemiring,
                                   TropicalSemiring>;
TYPED_TEST_SUITE(PeriodMonusLawsTest, MonusBase);

TYPED_TEST(PeriodMonusLawsTest, Theorem71MonusLaws) {
  PeriodSemiring<TypeParam> kt(TypeParam(), TimeDomain{0, 16});
  Rng rng(0x7e570002);
  CheckMonusLaws(kt, rng, /*iterations=*/120);
}

// --- Lemma 6.1: coalescing can be pushed into the pointwise ops. ----------

template <typename S>
class CoalescePushTest : public ::testing::Test {};
TYPED_TEST_SUITE(CoalescePushTest, AllBase);

TYPED_TEST(CoalescePushTest, Lemma61PlusAndTimes) {
  TypeParam k;
  TimeDomain dom{0, 16};
  Rng rng(0x7e570003);
  for (int i = 0; i < 200; ++i) {
    auto a = RandomTemporalElement(k, dom, rng, 4);
    auto b = RandomTemporalElement(k, dom, rng, 4);
    ASSERT_TRUE(StructurallyEqual(
        k, Coalesce(k, PointwisePlus(k, a, b)),
        Coalesce(k, PointwisePlus(k, Coalesce(k, a), b))));
    ASSERT_TRUE(StructurallyEqual(
        k, Coalesce(k, PointwiseTimes(k, a, b)),
        Coalesce(k, PointwiseTimes(k, Coalesce(k, a), b))));
  }
}

TEST(CoalescePushTest, Lemma61Monus) {
  // The extended version proves the monus variant; checked here for N.
  NatSemiring k;
  TimeDomain dom{0, 16};
  Rng rng(0x7e570004);
  for (int i = 0; i < 200; ++i) {
    auto a = RandomTemporalElement(k, dom, rng, 4);
    auto b = RandomTemporalElement(k, dom, rng, 4);
    ASSERT_TRUE(StructurallyEqual(
        k, Coalesce(k, PointwiseMonus(k, a, b)),
        Coalesce(k, PointwiseMonus(k, Coalesce(k, a), b))));
    ASSERT_TRUE(StructurallyEqual(
        k, Coalesce(k, PointwiseMonus(k, a, b)),
        Coalesce(k, PointwiseMonus(k, a, Coalesce(k, b)))));
  }
}

// --- Theorems 6.3 and 7.2: tau_T is an (m-)semiring homomorphism. ---------

template <typename S>
class TimesliceHomomorphismTest : public ::testing::Test {};
TYPED_TEST_SUITE(TimesliceHomomorphismTest, AllBase);

TYPED_TEST(TimesliceHomomorphismTest, Theorem63Homomorphism) {
  TypeParam k;
  TimeDomain dom{0, 12};
  PeriodSemiring<TypeParam> kt(k, dom);
  Rng rng(0x7e570005);
  for (int i = 0; i < 150; ++i) {
    auto a = kt.RandomValue(rng);
    auto b = kt.RandomValue(rng);
    for (TimePoint t = dom.tmin; t < dom.tmax; ++t) {
      ASSERT_TRUE(k.Equal(kt.TimesliceAt(kt.Zero(), t), k.Zero()));
      ASSERT_TRUE(k.Equal(kt.TimesliceAt(kt.One(), t), k.One()));
      ASSERT_TRUE(k.Equal(kt.TimesliceAt(kt.Plus(a, b), t),
                          k.Plus(kt.TimesliceAt(a, t), kt.TimesliceAt(b, t))))
          << "tau does not commute with + at t=" << t;
      ASSERT_TRUE(
          k.Equal(kt.TimesliceAt(kt.Times(a, b), t),
                  k.Times(kt.TimesliceAt(a, t), kt.TimesliceAt(b, t))))
          << "tau does not commute with * at t=" << t;
    }
  }
}

TEST(TimesliceHomomorphismTest, Theorem72MonusHomomorphism) {
  NatSemiring k;
  TimeDomain dom{0, 12};
  PeriodSemiring<NatSemiring> nt(k, dom);
  Rng rng(0x7e570006);
  for (int i = 0; i < 200; ++i) {
    auto a = nt.RandomValue(rng);
    auto b = nt.RandomValue(rng);
    auto d = nt.Monus(a, b);
    for (TimePoint t = dom.tmin; t < dom.tmax; ++t) {
      ASSERT_EQ(nt.TimesliceAt(d, t),
                k.Monus(nt.TimesliceAt(a, t), nt.TimesliceAt(b, t)));
    }
  }
}

// --- Composability: the construction can be iterated ((K^T)^T). -----------

TEST(PeriodSemiringTest, ConstructionComposes) {
  PeriodSemiring<NatSemiring> nt(NatSemiring(), TimeDomain{0, 8});
  PeriodSemiring<PeriodSemiring<NatSemiring>> ntt(nt, TimeDomain{0, 8});
  Rng rng(0x7e570007);
  CheckSemiringLaws(ntt, rng, /*iterations=*/25);
  EXPECT_EQ(ntt.Name(), "N^T^T");
}

}  // namespace
}  // namespace periodk
