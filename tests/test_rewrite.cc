// End-to-end tests of REWR (paper Fig. 4) on the running example:
// the rewritten queries must produce exactly the paper's Figure 1b/1c
// results, match the naive snapshot-by-snapshot oracle, and stay
// invariant under every optimization option.  The baseline semantics
// must exhibit exactly the AG and BD bugs described in the paper.
#include "rewrite/rewriter.h"

#include <gtest/gtest.h>

#include "baseline/naive.h"
#include "engine/temporal_ops.h"
#include "rewrite/period_enc.h"
#include "tests/running_example.h"

namespace periodk {
namespace {

Relation RunRewritten(const PlanPtr& query, const RewriteOptions& options) {
  SnapshotRewriter rewriter(kExampleDomain, options);
  Catalog catalog = ExampleCatalog();
  return Execute(rewriter.Rewrite(query), catalog);
}

Relation Figure1b() {
  return EncodedRelation({"cnt"},
                         {{{Value::Int(0)}, Interval(0, 3)},
                          {{Value::Int(1)}, Interval(3, 8)},
                          {{Value::Int(2)}, Interval(8, 10)},
                          {{Value::Int(1)}, Interval(10, 16)},
                          {{Value::Int(0)}, Interval(16, 18)},
                          {{Value::Int(1)}, Interval(18, 20)},
                          {{Value::Int(0)}, Interval(20, 24)}});
}

Relation Figure1c() {
  return EncodedRelation({"skill"},
                         {{{Value::String("SP")}, Interval(6, 8)},
                          {{Value::String("SP")}, Interval(10, 12)},
                          {{Value::String("NS")}, Interval(3, 8)}});
}

TEST(RewriteExampleTest, QOnDutyMatchesFigure1b) {
  Relation out = RunRewritten(QOnDuty(), RewriteOptions{});
  EXPECT_TRUE(out.BagEquals(Figure1b())) << out.ToString();
}

TEST(RewriteExampleTest, QSkillReqMatchesFigure1c) {
  Relation out = RunRewritten(QSkillReq(), RewriteOptions{});
  EXPECT_TRUE(out.BagEquals(Figure1c())) << out.ToString();
}

TEST(RewriteExampleTest, OptionCombinationsAllAgree) {
  for (bool hoist : {true, false}) {
    for (bool fuse : {true, false}) {
      for (bool preagg : {true, false}) {
        for (CoalesceImpl impl :
             {CoalesceImpl::kNative, CoalesceImpl::kWindow}) {
          RewriteOptions o;
          o.hoist_coalesce = hoist;
          o.fuse_aggregation = fuse;
          o.pre_aggregate = preagg;
          o.coalesce_impl = impl;
          ASSERT_TRUE(RunRewritten(QOnDuty(), o).BagEquals(Figure1b()))
              << "hoist=" << hoist << " fuse=" << fuse
              << " preagg=" << preagg;
          ASSERT_TRUE(RunRewritten(QSkillReq(), o).BagEquals(Figure1c()))
              << "hoist=" << hoist << " fuse=" << fuse
              << " preagg=" << preagg;
        }
      }
    }
  }
}

TEST(RewriteExampleTest, MatchesNaiveOracle) {
  Catalog catalog = ExampleCatalog();
  EXPECT_TRUE(RunRewritten(QOnDuty(), RewriteOptions{})
                  .BagEquals(NaiveSnapshotEval(QOnDuty(), catalog,
                                               kExampleDomain)));
  EXPECT_TRUE(RunRewritten(QSkillReq(), RewriteOptions{})
                  .BagEquals(NaiveSnapshotEval(QSkillReq(), catalog,
                                               kExampleDomain)));
}

TEST(RewriteExampleTest, HoistingProducesSingleCoalesce) {
  RewriteOptions hoisted;
  hoisted.hoist_coalesce = true;
  SnapshotRewriter r1(kExampleDomain, hoisted);
  PlanPtr join_query = MakeSelect(
      MakeJoin(MakeScan("works", WorksSnapshotSchema()),
               MakeScan("assign", AssignSnapshotSchema()),
               Eq(Col(1, "skill"), Col(3, "skill"))),
      Eq(Col(2, "mach"), LitStr("M1")));
  EXPECT_EQ(CountKind(r1.Rewrite(join_query), PlanKind::kCoalesce), 1);
  RewriteOptions unhoisted;
  unhoisted.hoist_coalesce = false;
  SnapshotRewriter r2(kExampleDomain, unhoisted);
  EXPECT_GE(CountKind(r2.Rewrite(join_query), PlanKind::kCoalesce), 2);
}

// --- The AG bug (paper Example 1.1). ---------------------------------------

TEST(BugRegressionTest, AggregationGapBugInBaselines) {
  RewriteOptions alignment;
  alignment.semantics = SnapshotSemantics::kAlignment;
  Relation nat = RunRewritten(QOnDuty(), alignment);
  // PG-Nat-like evaluation returns NO rows for the gaps [0,3), [16,18),
  // [20,24): the count-0 tuples are missing (AG bug).
  for (const Row& row : nat.rows()) {
    ASSERT_NE(row[0], Value::Int(0))
        << "alignment baseline unexpectedly produced a gap row";
  }
  // It still returns the non-gap rows.
  Relation coalesced = CoalesceNative(nat);
  Catalog cat = ExampleCatalog();
  EXPECT_EQ(coalesced.size(), 4u);  // 1,2,1,1 rows of Figure 1b

  RewriteOptions ip;
  ip.semantics = SnapshotSemantics::kIntervalPreservation;
  Relation atsql = RunRewritten(QOnDuty(), ip);
  for (const Row& row : atsql.rows()) {
    ASSERT_NE(row[0], Value::Int(0));
  }
}

TEST(BugRegressionTest, OursReturnsGapRows) {
  Relation ours = RunRewritten(QOnDuty(), RewriteOptions{});
  int gap_rows = 0;
  for (const Row& row : ours.rows()) {
    if (row[0] == Value::Int(0)) ++gap_rows;
  }
  EXPECT_EQ(gap_rows, 3);  // [0,3), [16,18), [20,24)
}

// --- The BD bug (paper Example 1.2). ---------------------------------------

TEST(BugRegressionTest, BagDifferenceBugInBaselines) {
  RewriteOptions alignment;
  alignment.semantics = SnapshotSemantics::kAlignment;
  Relation nat = RunRewritten(QSkillReq(), alignment);
  // The SP rows are erroneously missing: an SP worker exists at every
  // relevant snapshot, so NOT-EXISTS-style difference drops SP entirely.
  for (const Row& row : nat.rows()) {
    ASSERT_NE(row[0], Value::String("SP"))
        << "alignment baseline unexpectedly kept multiplicities";
  }
  // NS is still returned ([3,8) has no NS worker).
  Relation coalesced = CoalesceNative(nat);
  ASSERT_EQ(coalesced.size(), 1u);
  EXPECT_EQ(coalesced.rows()[0][0], Value::String("NS"));

  RewriteOptions ip;
  ip.semantics = SnapshotSemantics::kIntervalPreservation;
  Relation atsql = RunRewritten(QSkillReq(), ip);
  for (const Row& row : atsql.rows()) {
    ASSERT_NE(row[0], Value::String("SP"));
  }
}

// --- Unique encoding. -------------------------------------------------------

TEST(RewriteExampleTest, EncodingUniqueAcrossEquivalentInputs) {
  // Splitting (Ann,SP,[3,10)) into [3,8) + [8,10) changes the input
  // encoding but not the snapshot database; our rewriting must produce
  // the identical (coalesced) output, the baselines need not.
  Catalog split_catalog;
  Relation works(Schema::FromNames({"name", "skill", "a_begin", "a_end"}));
  works.AddRow({Value::String("Ann"), Value::String("SP"), Value::Int(3),
                Value::Int(8)});
  works.AddRow({Value::String("Ann"), Value::String("SP"), Value::Int(8),
                Value::Int(10)});
  works.AddRow({Value::String("Joe"), Value::String("NS"), Value::Int(8),
                Value::Int(16)});
  works.AddRow({Value::String("Sam"), Value::String("SP"), Value::Int(8),
                Value::Int(16)});
  works.AddRow({Value::String("Ann"), Value::String("SP"), Value::Int(18),
                Value::Int(20)});
  split_catalog.Put("works", std::move(works));
  split_catalog.Put("assign", AssignRelation());

  SnapshotRewriter rewriter(kExampleDomain, RewriteOptions{});
  PlanPtr identity = MakeScan("works", WorksSnapshotSchema());
  Relation out_original =
      Execute(rewriter.Rewrite(identity), ExampleCatalog());
  Relation out_split = Execute(rewriter.Rewrite(identity), split_catalog);
  EXPECT_TRUE(out_original.BagEquals(out_split));
  // And the unique encoding equals the PERIODENC image of the logical
  // model (coalesced N^T relation).
  Relation logical = PeriodEnc(
      PeriodDec(ExampleCatalog().Get("works"), kExampleDomain),
      WorksSnapshotSchema());
  EXPECT_TRUE(out_original.BagEquals(logical));
}

TEST(RewriteExampleTest, DistinctUnderSnapshotSemantics) {
  // SELECT DISTINCT skill FROM works: at every point, each present
  // skill exactly once.
  PlanPtr q = MakeDistinct(
      MakeProject(MakeScan("works", WorksSnapshotSchema()),
                  {Col(1, "skill")}, {Column("skill")}));
  Relation ours = RunRewritten(q, RewriteOptions{});
  Catalog catalog = ExampleCatalog();
  Relation oracle = NaiveSnapshotEval(q, catalog, kExampleDomain);
  EXPECT_TRUE(ours.BagEquals(oracle)) << ours.ToString();
  Relation expect = EncodedRelation(
      {"skill"}, {{{Value::String("SP")}, Interval(3, 16)},
                  {{Value::String("SP")}, Interval(18, 20)},
                  {{Value::String("NS")}, Interval(8, 16)}});
  EXPECT_TRUE(ours.BagEquals(expect));
}

}  // namespace
}  // namespace periodk
